// E9 — end-to-end comparison across network families: KRW vs full
// replication, best single node, FLP-only, and the greedy add/drop
// hill-climber. The qualitative claim: KRW tracks the best baseline on every
// family while no baseline is good everywhere (full replication loses under
// writes, single-copy loses under spread reads, FLP-only loses on updates).

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/baselines.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E9", "KRW vs baselines across network families");

  Rng master(909);
  struct Net {
    const char* name;
    Graph g;
  };
  Rng g1 = master.split(1), g2 = master.split(2), g3 = master.split(3);
  Net nets[] = {
      {"tree", makeRandomTree(60, g1, CostRange{1, 6})},
      {"grid-8x8", makeGrid2D(8, 8, 2.0)},
      {"gnp-60", makeGnp(60, 0.08, g2, CostRange{1, 8})},
      {"geometric-60", makeRandomGeometric(60, 0.25, g3, 20.0)},
      {"transit-stub", makeTransitStub({3, 3, 6, 18, 5, 1, 0.3, 0.4}, master)},
  };

  Table t({"network", "krw", "greedy-add-drop", "flp-only", "full-repl", "single"});
  for (Net& net : nets) {
    Rng rng = master.split(1000 + (&net - nets));
    ScenarioParams sp;
    sp.numObjects = 10;
    sp.storageCost = 35;
    sp.demand.totalRequests = 1200;
    sp.demand.writeFraction = 0.12;
    sp.demand.nodeSkew = 0.6;
    auto inst = makeScenario(std::move(net.g), sp, rng);

    const Cost krw = placementCost(inst, KrwApprox{}.place(inst)).total();
    const Cost greedy = placementCost(inst, greedyAddDrop(inst)).total();
    const Cost flpOnly = placementCost(inst, flpOnlyPlacement(inst)).total();
    const Cost full = placementCost(inst, fullReplication(inst)).total();
    const Cost single = placementCost(inst, bestSingleNode(inst)).total();
    t.addRow({net.name, Table::num(krw, 0), Table::num(greedy, 0),
              Table::num(flpOnly, 0), Table::num(full, 0), Table::num(single, 0)});
  }
  t.print("total cost, 10 objects, 1200 reqs each, 12% writes (lower is better)");
  return 0;
}

// Microbenchmarks of the library's hot kernels (google-benchmark): Dijkstra,
// APSP, metric MST, the export-envelope construction, the radii profile, and
// single-object solves of both placement algorithms.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "core/radii.hpp"
#include "graph/generators.hpp"
#include "metric/dijkstra.hpp"
#include "flp/jain_vazirani.hpp"
#include "steiner/mst.hpp"
#include "steiner/steiner.hpp"
#include "tree/tree_solver.hpp"
#include "tree/tuples.hpp"
#include "workload/workload.hpp"

using namespace krw;

namespace {

Graph benchGraph(std::size_t n) {
  Rng rng(n);
  return makeGnp(n, 8.0 / static_cast<double>(n), rng, CostRange{1, 9});
}

void BM_Dijkstra(benchmark::State& state) {
  const Graph g = benchGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(dijkstra(g, 0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dijkstra)->Range(64, 4096)->Complexity();

void BM_Apsp(benchmark::State& state) {
  const Graph g = benchGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(DistanceMatrix(g));
}
BENCHMARK(BM_Apsp)->Range(64, 512);

void BM_MetricMst(benchmark::State& state) {
  const std::size_t n = 256;
  const Graph g = benchGraph(n);
  const DistanceMatrix dm(g);
  std::vector<NodeId> terms;
  Rng rng(7);
  for (NodeId v = 0; v < state.range(0); ++v)
    terms.push_back(static_cast<NodeId>(rng.uniformInt(n)));
  for (auto _ : state) benchmark::DoNotOptimize(metricMstWeight(dm, terms));
}
BENCHMARK(BM_MetricMst)->Range(8, 128);

void BM_LowerEnvelope(benchmark::State& state) {
  Rng rng(11);
  std::vector<ExportCandidate> cands(static_cast<std::size_t>(state.range(0)));
  for (auto& c : cands) {
    c.cost = rng.uniformReal(0, 100);
    c.nOut = static_cast<Cost>(rng.uniformInt(50));
  }
  for (auto _ : state) {
    auto copy = cands;
    benchmark::DoNotOptimize(lowerEnvelope(std::move(copy)));
  }
}
BENCHMARK(BM_LowerEnvelope)->Range(16, 1024);

void BM_RequestProfile(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  Graph g = benchGraph(n);
  DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 10));
  DemandParams d;
  d.totalRequests = 4 * n;
  addSyntheticObject(inst, d, rng);
  inst.metric();
  for (auto _ : state) benchmark::DoNotOptimize(RequestProfile(inst, 0));
}
BENCHMARK(BM_RequestProfile)->Range(64, 512);

void BM_KrwPlaceObject(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  Graph g = benchGraph(n);
  DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 20));
  DemandParams d;
  d.totalRequests = 4 * n;
  d.writeFraction = 0.15;
  addSyntheticObject(inst, d, rng);
  inst.metric();
  const RequestProfile prof(inst, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(KrwApprox{}.placeObject(inst, 0, prof));
}
BENCHMARK(BM_KrwPlaceObject)->Range(64, 512);

void BM_TreeSolveObject(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(19);
  Graph g = makeRandomTree(n, rng, CostRange{1, 9});
  DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 20));
  DemandParams d;
  d.totalRequests = 4 * n;
  d.writeFraction = 0.15;
  addSyntheticObject(inst, d, rng);
  for (auto _ : state) benchmark::DoNotOptimize(treeOptimalObject(inst, 0));
}
BENCHMARK(BM_TreeSolveObject)->Range(64, 1024);

void BM_JainVazirani(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  static std::vector<DistanceMatrix> keep;
  keep.emplace_back(g);
  FlpInstance inst;
  inst.metric = &keep.back();
  Rng rng(23);
  inst.open.resize(n);
  for (auto& c : inst.open) c = rng.uniformReal(5, 50);
  for (NodeId v = 0; v < n; ++v)
    if (rng.uniformReal() < 0.7) {
      inst.clientNode.push_back(v);
      inst.clientWeight.push_back(1 + rng.uniformInt(4));
    }
  for (auto _ : state) benchmark::DoNotOptimize(jainVazirani(inst));
}
BENCHMARK(BM_JainVazirani)->Range(32, 256);

void BM_DreyfusWagner(benchmark::State& state) {
  const std::size_t n = 64;
  const Graph g = benchGraph(n);
  const DistanceMatrix dm(g);
  Rng rng(29);
  std::vector<NodeId> terms;
  while (terms.size() < static_cast<std::size_t>(state.range(0)))
    terms.push_back(static_cast<NodeId>(rng.uniformInt(n)));
  for (auto _ : state) benchmark::DoNotOptimize(dreyfusWagnerWeight(dm, terms));
}
BENCHMARK(BM_DreyfusWagner)->DenseRange(4, 12, 4);

void BM_Steiner2Approx(benchmark::State& state) {
  const std::size_t n = 256;
  const Graph g = benchGraph(n);
  const DistanceMatrix dm(g);
  Rng rng(31);
  std::vector<NodeId> terms;
  while (terms.size() < static_cast<std::size_t>(state.range(0)))
    terms.push_back(static_cast<NodeId>(rng.uniformInt(n)));
  for (auto _ : state) benchmark::DoNotOptimize(steiner2Approx(g, dm, terms));
}
BENCHMARK(BM_Steiner2Approx)->Range(8, 64);

}  // namespace

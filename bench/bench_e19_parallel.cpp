// E19 — parallel scaling (implementation property, not a paper claim). Both
// solvers fan independent objects out over the thread pool; this bench
// measures the speedup on a many-object instance, plus the parallel APSP.
// Amdahl ceiling: the shared metric closure is computed once up front.

#include <algorithm>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "tree/tree_solver.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E19", "parallel speedup across objects (implementation property)");

  Rng rng(1919);
  const std::size_t hw = parallelism();

  // KRW on a geometric graph, 64 objects.
  Graph g = makeRandomGeometric(160, 0.16, rng, 30.0);
  ScenarioParams sp;
  sp.numObjects = 64;
  sp.storageCost = 40;
  sp.demand.totalRequests = 600;
  sp.demand.writeFraction = 0.1;
  auto inst = makeScenario(std::move(g), sp, rng);
  inst.metric();  // shared metric priced separately

  // Tree solver on a 600-node tree, 64 objects.
  Rng rng2(1920);
  Graph t = makeRandomTree(600, rng2, CostRange{1, 6});
  ScenarioParams spt = sp;
  auto treeInst = makeScenario(std::move(t), spt, rng2);

  Table tab({"threads", "krw place (ms)", "speedup", "tree solve (ms)", "speedup "});
  double krwBase = 0, treeBase = 0;
  std::vector<std::size_t> counts{1, 2, 4, hw};
  counts.erase(std::remove_if(counts.begin(), counts.end(),
                              [&](std::size_t t) { return t > hw; }),
               counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (std::size_t threads : counts) {
    setParallelism(threads);
    const double krwMs = 1e3 * timeSeconds([&] { KrwApprox{}.place(inst); });
    const double treeMs = 1e3 * timeSeconds([&] { treeOptimalPlacement(treeInst); });
    if (threads == 1) {
      krwBase = krwMs;
      treeBase = treeMs;
    }
    tab.addRow({Table::num(static_cast<std::uint64_t>(threads)), Table::num(krwMs, 1),
                Table::num(krwBase / krwMs, 2), Table::num(treeMs, 1),
                Table::num(treeBase / treeMs, 2)});
  }
  setParallelism(hw);
  tab.print("64 objects; geometric n=160 (KRW) and random tree n=600 (DP)");
  return 0;
}

// E5 — model behaviour (§1): as the write fraction grows, update cost makes
// replication expensive and the number of copies per object must fall toward
// 1. The sweep also prints the cost split, showing the read/update crossover.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E5", "replication degree falls as the write share rises");

  Table t({"write-frac", "avg-copies", "storage", "read", "write-access", "update",
           "total"});
  Rng master(555);
  const std::size_t side = 8;

  for (const double wf : {0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.95}) {
    Rng rng = master.split(static_cast<std::uint64_t>(wf * 1000));
    Graph g = makeGrid2D(side, side);
    ScenarioParams sp;
    sp.numObjects = 12;
    sp.storageCost = 15;
    sp.demand.totalRequests = 800;
    sp.demand.writeFraction = wf;
    sp.demand.activeNodeFraction = 0.8;
    auto inst = makeScenario(std::move(g), sp, rng);

    const Placement p = KrwApprox{}.place(inst);
    const CostBreakdown c = placementCost(inst, p);
    double copies = 0;
    for (const CopySet& cs : p) copies += static_cast<double>(cs.size());
    copies /= static_cast<double>(p.size());

    t.addRow({Table::num(wf, 2), Table::num(copies, 2), Table::num(c.storage, 0),
              Table::num(c.read, 0), Table::num(c.writeAccess, 0),
              Table::num(c.update, 0), Table::num(c.total(), 0)});
  }
  t.print("8x8 grid, 12 objects, 800 requests each");
  return 0;
}

// E3 — Theorem 13 runtime: O(|X| · |V| · diam(T) · log(deg(T))). We time the
// solver across tree families whose diameters and degrees scale differently
// and report runtime together with the model term n·diam·log(deg); the
// time / model column should stay roughly constant within a family.

#include <cmath>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "tree/tree.hpp"
#include "tree/tree_solver.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E3", "Theorem 13 - tree solver scales as |X|*|V|*diam*log(deg)");

  Table t({"family", "n", "diam", "maxdeg", "time-ms", "time/model (ns)"});
  Rng master(999);

  struct Family {
    const char* name;
    Graph (*make)(std::size_t, Rng&);
  };
  const Family families[] = {
      {"balanced3", [](std::size_t n, Rng&) { return makeBalancedTree(n, 3, 2.0); }},
      {"path", [](std::size_t n, Rng&) { return makePath(n, 1.0); }},
      {"star", [](std::size_t n, Rng&) { return makeStar(n, 1.0); }},
      {"random-deg4",
       [](std::size_t n, Rng& rng) { return makeRandomTreeMaxDegree(n, 4, rng, CostRange{1, 5}); }},
  };

  for (const Family& fam : families) {
    for (const std::size_t n : {128u, 256u, 512u, 1024u}) {
      Rng rng = master.split(n + 13 * (&fam - families));
      Graph g = fam.make(n, rng);
      std::vector<Cost> storage(n);
      for (auto& c : storage) c = rng.uniformReal(1, 50);
      DataManagementInstance inst(std::move(g), std::move(storage));
      std::vector<Freq> reads(n, 0), writes(n, 0);
      for (NodeId v = 0; v < n; ++v) {
        reads[v] = rng.uniformInt(6);
        writes[v] = rng.uniformInt(3);
      }
      inst.addObject(std::move(reads), std::move(writes));

      const RootedTree tree(inst.graph(), 0);
      const std::size_t diam = std::max<std::size_t>(1, tree.unweightedDiameter());
      const std::size_t deg = inst.graph().maxDegree();

      Cost cost = 0;
      const double secs = timeSeconds([&] { cost = treeOptimalObject(inst, 0).cost; });
      const double model = static_cast<double>(n) * static_cast<double>(diam) *
                           std::max(1.0, std::log2(static_cast<double>(deg)));
      t.addRow({fam.name, Table::num(std::uint64_t{n}), Table::num(std::uint64_t{diam}),
                Table::num(std::uint64_t{deg}), Table::num(secs * 1e3, 2),
                Table::num(secs * 1e9 / model, 1)});
      (void)cost;
    }
  }
  t.print("single-object solve; time/model should be ~flat within each family");
  return 0;
}

// E13 — Lemma 8: the algorithm's output is a proper placement with k1 = 29
// (every node within 29·max(rw, rs) of a copy) and pairwise copy separation
// > 4·max(rw). The bench measures how much slack the proof constants leave in
// practice: observed worst ratios are typically far below the bounds.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E13", "Lemma 8 - proper-placement constants k1=29, separation 4");

  Table t({"family", "trials", "violations", "worst dist/max(rw,rs)", "bound",
           "min pair dist/max(rw)", "bound "});
  Rng master(1313);

  struct Family {
    const char* name;
    int id;
  };
  for (const Family fam : {Family{"gnp-14", 0}, Family{"grid-4x4", 1}, Family{"tree-14", 2}}) {
    double worstK1 = 0;
    double worstSep = kInfCost;
    int violations = 0, trials = 0;
    for (int trial = 0; trial < 80; ++trial) {
      Rng rng = master.split(fam.id * 1000 + trial);
      Graph g = fam.id == 0   ? makeGnp(14, 0.3, rng, CostRange{1, 8})
                : fam.id == 1 ? makeGrid2D(4, 4, 3.0)
                              : makeRandomTree(14, rng, CostRange{1, 8});
      const std::size_t n = g.numNodes();
      std::vector<Cost> storage(n);
      for (auto& c : storage) c = rng.uniformReal(0, 40);
      DataManagementInstance inst(std::move(g), std::move(storage));
      std::vector<Freq> reads(n, 0), writes(n, 0);
      for (NodeId v = 0; v < n; ++v) {
        reads[v] = rng.uniformInt(5);
        writes[v] = rng.uniformInt(3);
      }
      inst.addObject(std::move(reads), std::move(writes));
      if (inst.object(0).totalRequests() == 0) continue;

      const RequestProfile prof(inst, 0);
      const CopySet copies = KrwApprox{}.placeObject(inst, 0, prof);
      const ProperPlacementCheck chk = checkProperPlacement(inst, prof, copies);
      ++trials;
      if (!chk.property1 || !chk.property2) ++violations;
      worstK1 = std::max(worstK1, chk.worstDistOverRadius);
      worstSep = std::min(worstSep, chk.minPairSeparation);
    }
    t.addRow({fam.name, Table::num(static_cast<std::uint64_t>(trials)),
              Table::num(static_cast<std::uint64_t>(violations)), Table::num(worstK1, 2),
              "29", worstSep == kInfCost ? "n/a" : Table::num(worstSep, 2), "4"});
  }
  t.print("proper-placement invariants (violations must be 0)");
  return 0;
}

// E8 — why phases 2 and 3 exist. Phase 1 alone ignores update cost: on
// write-heavy workloads with cheap storage it over-replicates without bound.
// Phase 2 densifies where storage radii demand it (protects read cost);
// phase 3 sparsifies by write radius (protects update cost). Adversarial
// families show each phase earning its keep.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

namespace {

DataManagementInstance writeHeavyCheapStorage(Rng& rng) {
  // Adversarial for phase-1-only: lots of writers, storage nearly free.
  const std::size_t n = 36;
  Graph g = makeGrid2D(6, 6, 4.0);
  DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 0.5));
  std::vector<Freq> reads(n, 1), writes(n, 0);
  for (NodeId v = 0; v < n; ++v) writes[v] = 4 + rng.uniformInt(4);
  inst.addObject(std::move(reads), std::move(writes));
  return inst;
}

DataManagementInstance readSparseExpensiveStorage(Rng& rng) {
  // Exercises phase 2: a few far-apart readers, expensive storage keeps the
  // FLP from opening enough facilities near them.
  const std::size_t n = 49;
  Graph g = makeGrid2D(7, 7, 6.0);
  DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 30.0));
  std::vector<Freq> reads(n, 0), writes(n, 0);
  for (NodeId corner : {0u, 6u, 42u, 48u, 24u}) reads[corner] = 30;
  writes[24] = 2;
  inst.addObject(std::move(reads), std::move(writes));
  (void)rng;
  return inst;
}

}  // namespace

int main() {
  header("E8", "phase ablation - phases 2 and 3 are necessary");

  struct Config {
    const char* name;
    bool p2, p3;
  };
  const Config configs[] = {
      {"phase1-only", false, false},
      {"phases1+2", true, false},
      {"phases1+3", false, true},
      {"full (1+2+3)", true, true},
  };

  Rng rng(808);
  struct Workload {
    const char* name;
    DataManagementInstance inst;
  };
  Workload workloads[] = {
      {"write-heavy/cheap-storage", writeHeavyCheapStorage(rng)},
      {"read-sparse/pricey-storage", readSparseExpensiveStorage(rng)},
  };

  Table t({"workload", "config", "copies", "storage", "read", "update", "total"});
  for (Workload& w : workloads) {
    for (const Config& cfg : configs) {
      KrwConfig kc;
      kc.runPhase2 = cfg.p2;
      kc.runPhase3 = cfg.p3;
      const Placement p = KrwApprox(kc).place(w.inst);
      const CostBreakdown c = placementCost(w.inst, p);
      t.addRow({w.name, cfg.name, Table::num(std::uint64_t{p[0].size()}),
                Table::num(c.storage, 0), Table::num(c.read, 0),
                Table::num(c.writeAccess + c.update, 0), Table::num(c.total(), 0)});
    }
  }
  t.print("ablating the 3-phase structure");
  return 0;
}

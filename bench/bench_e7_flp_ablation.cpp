// E7 — Lemma 9: the storage cost of the final placement is bounded by
// f · (Cs* + Cr*) where f is the approximation factor of the phase-1 facility
// location solver. Ablation: swap the phase-1 solver and compare final cost
// and storage share. Mettu–Plaxton (f = 3) is the default; best-single has no
// FLP guarantee and should degrade on read-spread workloads.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E7", "Lemma 9 - phase-1 FLP solver quality propagates to the placement");

  struct SolverRow {
    const char* name;
    Phase1Solver solver;
  };
  const SolverRow solvers[] = {
      {"mettu-plaxton", Phase1Solver::kMettuPlaxton},
      {"jain-vazirani", Phase1Solver::kJainVazirani},
      {"local-search", Phase1Solver::kLocalSearch},
      {"greedy", Phase1Solver::kGreedy},
      {"best-single", Phase1Solver::kBestSingle},
  };

  Table t({"phase1-solver", "total-cost", "storage", "read", "update", "avg-copies",
           "time-ms"});
  Rng master(707);
  Graph g = makeTransitStub({4, 3, 8, 20, 5, 1, 0.3, 0.4}, master);
  ScenarioParams sp;
  sp.numObjects = 16;
  sp.storageCost = 45;
  sp.demand.totalRequests = 1500;
  sp.demand.writeFraction = 0.08;
  sp.demand.nodeSkew = 0.7;
  auto inst = makeScenario(std::move(g), sp, master);
  inst.metric();  // price the metric once, outside the timers

  for (const SolverRow& sr : solvers) {
    KrwConfig cfg;
    cfg.phase1 = sr.solver;
    Placement p;
    const double secs = timeSeconds([&] { p = KrwApprox(cfg).place(inst); });
    const CostBreakdown c = placementCost(inst, p);
    double copies = 0;
    for (const CopySet& cs : p) copies += static_cast<double>(cs.size());
    copies /= static_cast<double>(p.size());
    t.addRow({sr.name, Table::num(c.total(), 0), Table::num(c.storage, 0),
              Table::num(c.read, 0), Table::num(c.writeAccess + c.update, 0),
              Table::num(copies, 2), Table::num(secs * 1e3, 1)});
  }
  t.print("transit-stub, 16 objects, 1500 reqs each, 8% writes");
  return 0;
}

// E12 — Claim 2 substrate: updating along an MST over the copy set costs at
// most twice the optimal Steiner tree. Distribution of
// MST(closure) / Steiner-OPT and of the constructive 2-approximation over
// random terminal sets; both must stay <= 2 (tight only on adversarial
// instances).

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "steiner/mst.hpp"
#include "steiner/steiner.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E12", "Claim 2 - MST over copies <= 2x minimum Steiner tree");

  Table t({"|terminals|", "trials", "mst/opt-mean", "mst/opt-max", "2approx/opt-mean",
           "2approx/opt-max"});
  Rng master(1212);
  const std::size_t n = 16;

  for (const std::size_t k : {3u, 5u, 8u, 12u}) {
    std::vector<double> mstRatios, apxRatios;
    for (int trial = 0; trial < 60; ++trial) {
      Rng rng = master.split(k * 1000 + trial);
      const Graph g = makeGnp(n, 0.25, rng, CostRange{1, 9});
      const DistanceMatrix dm(g);
      // k distinct random terminals.
      std::vector<NodeId> terms;
      while (terms.size() < k) {
        const NodeId v = static_cast<NodeId>(rng.uniformInt(n));
        if (std::find(terms.begin(), terms.end(), v) == terms.end()) terms.push_back(v);
      }
      const Cost opt = dreyfusWagnerWeight(dm, terms);
      if (opt <= 0) continue;
      mstRatios.push_back(metricMstWeight(dm, terms) / opt);
      apxRatios.push_back(steiner2Approx(g, dm, terms).weight / opt);
    }
    const Stats ms = summarize(mstRatios);
    const Stats as = summarize(apxRatios);
    t.addRow({Table::num(std::uint64_t{k}), Table::num(static_cast<std::uint64_t>(ms.count)),
              Table::num(ms.mean, 3), Table::num(ms.max, 3), Table::num(as.mean, 3),
              Table::num(as.max, 3)});
  }
  t.print("n=16 G(n,p) graphs; both ratios bounded by 2");
  return 0;
}

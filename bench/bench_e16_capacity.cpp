// E16 — memory-capacity extension (direction of the paper's related work:
// Baev–Rajaraman, Meyer auf der Heide et al.). The uncapacitated KRW
// placement is repaired to satisfy per-node capacity; the sweep shows the
// price of the constraint: cost rises smoothly as capacity tightens until
// the instance becomes infeasible.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/capacity.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E16", "capacity-constrained placement (extension)");

  Rng rng(1616);
  Graph g = makeGrid2D(6, 6, 2.0);
  ScenarioParams sp;
  sp.numObjects = 18;
  sp.storageCost = 8;
  sp.demand.totalRequests = 600;
  sp.demand.writeFraction = 0.08;
  auto inst = makeScenario(std::move(g), sp, rng);

  const Placement free = KrwApprox{}.place(inst);
  const Cost freeCost = placementCost(inst, free).total();
  double maxLoad = 0;
  {
    NodeCapacity probe{std::vector<Cost>(inst.numNodes(), 1e9)};
    for (Cost l : probe.load(inst, free)) maxLoad = std::max(maxLoad, l);
  }

  Table t({"cap/node", "feasible", "total-cost", "cost/uncap", "max-load"});
  t.addRow({"unbounded", "yes", Table::num(freeCost, 0), "1.00", Table::num(maxLoad, 0)});
  for (const Cost cap : {8.0, 6.0, 4.0, 3.0, 2.0, 1.0}) {
    NodeCapacity nc{std::vector<Cost>(inst.numNodes(), cap)};
    std::string feas = "yes";
    Cost cost = 0;
    double load = 0;
    try {
      const Placement p = enforceCapacity(inst, free, nc);
      cost = placementCost(inst, p).total();
      for (Cost l : nc.load(inst, p)) load = std::max(load, l);
    } catch (const std::runtime_error&) {
      feas = "no";
    }
    t.addRow({Table::num(cap, 0), feas, feas == "yes" ? Table::num(cost, 0) : "-",
              feas == "yes" ? Table::num(cost / freeCost, 2) : "-",
              feas == "yes" ? Table::num(load, 0) : "-"});
  }
  t.print("6x6 grid, 18 objects; repair of the KRW placement under capacities");
  return 0;
}

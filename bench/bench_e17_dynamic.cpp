// E17 — static vs dynamic (extension; the paper's §1.2 positions its static
// algorithms against the dynamic strategies of [1], [2], [10]). On a
// stationary workload the offline static placement (aggregate frequencies
// known in advance) lower-bounds any online strategy; rent-to-buy should sit
// within a small constant of it. On a drifting workload the roles flip: any
// single static placement goes stale while the online strategy follows the
// hotspot.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "dynamic/dynamic_strategy.hpp"
#include "dynamic/request_sequence.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E17", "static (offline) vs rent-to-buy (online) strategies");

  Rng master(1717);
  const std::size_t n = 40;

  Table t({"workload", "write-frac", "static-offline", "rent-to-buy", "reoptimize",
           "rent-to-buy/offline"});

  // Stationary workloads: offline static knows the aggregate in advance.
  for (const double wf : {0.0, 0.1, 0.3}) {
    Rng rng = master.split(static_cast<std::uint64_t>(wf * 100));
    Graph g = makeRandomGeometric(n, 0.3, rng, 25.0);
    DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 25.0));
    DemandParams d;
    d.totalRequests = 3000;
    d.writeFraction = wf;
    d.nodeSkew = 0.8;
    addSyntheticObject(inst, d, rng);
    const RequestSequence seq = sequenceFromDemand(inst.object(0), rng);

    const RequestProfile prof(inst, 0);
    StaticPolicy offline(KrwApprox{}.placeObject(inst, 0, prof));
    RentToBuyPolicy online;
    ReoptimizePolicy reopt(300, 0.7);
    const Cost off = simulateDynamic(inst, 0, seq, offline).total();
    const Cost on = simulateDynamic(inst, 0, seq, online).total();
    const Cost re = simulateDynamic(inst, 0, seq, reopt).total();
    t.addRow({"stationary", Table::num(wf, 1), Table::num(off, 0), Table::num(on, 0),
              Table::num(re, 0), Table::num(on / off, 2)});
  }

  // Drifting workloads: the static placement is fit on the full aggregate
  // (the best a static strategy can do) but still cannot track the phases.
  for (const double wf : {0.0, 0.1}) {
    Rng rng = master.split(500 + static_cast<std::uint64_t>(wf * 100));
    Graph g = makeRandomGeometric(n, 0.3, rng, 25.0);
    DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 25.0));
    inst.addObject({}, {});
    const RequestSequence seq = driftingSequence(n, 3000, 6, wf, 0.08, rng);

    const ObjectDemand agg = aggregate(seq, n);
    DataManagementInstance aggInst(inst.graph(), std::vector<Cost>(n, 25.0));
    aggInst.addObject(agg.reads, agg.writes);
    const RequestProfile prof(aggInst, 0);
    StaticPolicy offline(KrwApprox{}.placeObject(aggInst, 0, prof));
    RentToBuyPolicy online;
    ReoptimizePolicy reopt(300, 0.7);
    const Cost off = simulateDynamic(inst, 0, seq, offline).total();
    const Cost on = simulateDynamic(inst, 0, seq, online).total();
    const Cost re = simulateDynamic(inst, 0, seq, reopt).total();
    t.addRow({"drifting(6 phases)", Table::num(wf, 1), Table::num(off, 0),
              Table::num(on, 0), Table::num(re, 0), Table::num(on / off, 2)});
  }

  t.print("geometric n=40, 3000 requests; online/offline < 1 on drifting = adaptation wins");
  return 0;
}

// E6 — cost-model generality (§1.1): the storage fee steers consolidation.
// With cs = 0 the model degenerates to pure communication (copies are free;
// read-only objects replicate everywhere); as cs grows, copies disappear
// until exactly one remains. The tree DP provides the exact reference curve
// on a tree topology.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "tree/tree_solver.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E6", "storage price drives the optimal replication degree to 1");

  Table t({"storage-cost", "opt-copies", "opt-cost", "krw-copies", "krw-cost", "krw/opt"});
  const std::size_t n = 40;

  for (const Cost cs : {0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    Rng rng(616);
    Graph g = makeRandomTree(n, rng, CostRange{1, 6});
    DataManagementInstance inst(std::move(g), std::vector<Cost>(n, cs));
    DemandParams d;
    d.totalRequests = 600;
    d.writeFraction = 0.1;
    addSyntheticObject(inst, d, rng);

    const TreeObjectResult opt = treeOptimalObject(inst, 0);
    const RequestProfile prof(inst, 0);
    const CopySet krw = KrwApprox{}.placeObject(inst, 0, prof);
    const Cost krwCost = objectCost(inst, 0, krw).total();

    t.addRow({Table::num(cs, 0), Table::num(std::uint64_t{opt.copies.size()}),
              Table::num(opt.cost, 0), Table::num(std::uint64_t{krw.size()}),
              Table::num(krwCost, 0),
              Table::num(opt.cost > 0 ? krwCost / opt.cost : 1.0, 2)});
  }
  t.print("random 40-node tree, 600 requests, 10% writes");
  return 0;
}

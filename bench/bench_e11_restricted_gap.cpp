// E11 — Lemma 1: restricting writes to "nearest copy + MST over copies"
// costs at most a factor 4 versus fully unrestricted (Steiner) updates.
// We compute both exact optima on tiny graphs (Dreyfus–Wagner inside the
// subset search) and report the distribution of OPT_restricted / OPT.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "exact/brute_force.hpp"
#include "graph/generators.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E11", "Lemma 1 - restricted-policy optimum within 4x of Steiner optimum");

  Table t({"write-mix", "trials", "gap-min", "gap-mean", "gap-p90", "gap-max", "bound"});
  Rng master(1111);
  const std::size_t n = 8;

  for (const double writeMix : {0.2, 0.5, 0.8, 1.0}) {
    std::vector<double> gaps;
    for (int trial = 0; trial < 40; ++trial) {
      Rng rng = master.split(static_cast<std::uint64_t>(writeMix * 100) * 100 + trial);
      Graph g = makeGnp(n, 0.35, rng, CostRange{1, 9});
      std::vector<Cost> storage(n);
      for (auto& c : storage) c = rng.uniformReal(0, 25);
      DataManagementInstance inst(std::move(g), std::move(storage));
      std::vector<Freq> reads(n, 0), writes(n, 0);
      for (NodeId v = 0; v < n; ++v) {
        const Freq volume = rng.uniformInt(5);
        for (Freq i = 0; i < volume; ++i)
          (rng.uniformReal() < writeMix ? writes : reads)[v] += 1;
      }
      inst.addObject(std::move(reads), std::move(writes));
      if (inst.object(0).totalWrites() == 0) continue;

      const Cost optSteiner = exactObjectOptimum(inst, 0, UpdatePolicy::kExactSteiner).cost;
      const Cost optRestricted = exactObjectOptimum(inst, 0, UpdatePolicy::kNearestPlusMst).cost;
      if (optSteiner > 0) gaps.push_back(optRestricted / optSteiner);
    }
    const Stats s = summarize(gaps);
    t.addRow({Table::num(writeMix, 1), Table::num(static_cast<std::uint64_t>(s.count)),
              Table::num(s.min, 3), Table::num(s.mean, 3), Table::num(s.p90, 3),
              Table::num(s.max, 3), "4.0"});
  }
  t.print("n=8 random graphs; gap must stay below the Lemma-1 bound of 4");
  return 0;
}

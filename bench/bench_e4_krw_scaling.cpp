// E4 — §2 claim: the approximation algorithm runs in polynomial time. We time
// the full pipeline (APSP metric + radii + 3 phases) against n and break out
// the phase costs. Doubling n should grow runtime polynomially (~n^2 log n
// for the metric, ~n^2 for the phases).

#include <cmath>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E4", "polynomial running time of the approximation algorithm");

  Table t({"n", "metric-ms", "profile-ms", "place-ms", "total-ms", "copies"});
  Rng master(4242);

  for (const std::size_t n : {64u, 128u, 256u, 512u}) {
    Rng rng = master.split(n);
    Graph g = makeRandomGeometric(n, 1.8 / std::sqrt(static_cast<double>(n)), rng, 50.0);
    std::vector<Cost> storage(n);
    for (auto& c : storage) c = rng.uniformReal(5, 80);
    DataManagementInstance inst(std::move(g), std::move(storage));
    DemandParams d;
    d.totalRequests = 4 * n;
    d.writeFraction = 0.15;
    addSyntheticObject(inst, d, rng);

    const double metricMs = 1e3 * timeSeconds([&] { inst.metric(); });
    double profileMs = 0;
    std::size_t copies = 0;
    double placeMs = 0;
    {
      const RequestProfile* profPtr = nullptr;
      static std::vector<RequestProfile> keep;  // keep alive across lambdas
      profileMs = 1e3 * timeSeconds([&] {
        keep.emplace_back(inst, 0);
        profPtr = &keep.back();
      });
      placeMs = 1e3 * timeSeconds([&] {
        copies = KrwApprox{}.placeObject(inst, 0, *profPtr).size();
      });
    }
    t.addRow({Table::num(std::uint64_t{n}), Table::num(metricMs, 2),
              Table::num(profileMs, 2), Table::num(placeMs, 2),
              Table::num(metricMs + profileMs + placeMs, 2),
              Table::num(std::uint64_t{copies})});
  }
  t.print("geometric graphs, one object, volume 4n, 15% writes");
  return 0;
}

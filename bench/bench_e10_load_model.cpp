// E10 — §1: the cost model generalizes the total-communication-load model.
// Setting cs = 0 and ct(e) = 1/bandwidth(e) makes total cost == total load.
// On trees we can verify against the exact optimum (Milo–Wolfson solve trees
// optimally in the load model; our tree DP specializes to it), and on rings
// we compare KRW with exhaustive search.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "exact/brute_force.hpp"
#include "graph/generators.hpp"
#include "tree/tree_solver.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E10", "cost model with cs=0, ct=1/bandwidth == total communication load");

  Table t({"topology", "n", "opt-load", "krw-load", "krw/opt"});
  Rng master(1010);

  // Trees with heterogeneous "bandwidths" (edge cost = 1/bw).
  for (int trial = 0; trial < 4; ++trial) {
    Rng rng = master.split(trial);
    const std::size_t n = 20;
    Graph g = makeRandomTree(n, rng, CostRange{0.05, 1.0});  // ct = 1/bw in [0.05, 1]
    DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 0.0));
    std::vector<Freq> reads(n, 0), writes(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      reads[v] = rng.uniformInt(6);
      writes[v] = rng.uniformInt(2);
    }
    inst.addObject(std::move(reads), std::move(writes));
    if (inst.object(0).totalRequests() == 0) continue;

    const Cost opt = treeOptimalObject(inst, 0).cost;
    const RequestProfile prof(inst, 0);
    const Cost krw = objectCost(inst, 0, KrwApprox{}.placeObject(inst, 0, prof)).total();
    t.addRow({"tree", Table::num(std::uint64_t{n}), Table::num(opt, 2),
              Table::num(krw, 2), Table::num(opt > 0 ? krw / opt : 1.0, 3)});
  }

  // Rings (Milo–Wolfson's other polynomial case) with exhaustive optimum.
  for (int trial = 0; trial < 4; ++trial) {
    Rng rng = master.split(100 + trial);
    const std::size_t n = 12;
    Graph g = makeCycle(n, 0.5);
    DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 0.0));
    std::vector<Freq> reads(n, 0), writes(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      reads[v] = rng.uniformInt(6);
      writes[v] = rng.uniformInt(2);
    }
    inst.addObject(std::move(reads), std::move(writes));
    if (inst.object(0).totalRequests() == 0) continue;

    const Cost opt = exactObjectOptimum(inst, 0, UpdatePolicy::kExactSteiner).cost;
    const RequestProfile prof(inst, 0);
    const Cost krw = objectCost(inst, 0, KrwApprox{}.placeObject(inst, 0, prof)).total();
    t.addRow({"ring", Table::num(std::uint64_t{n}), Table::num(opt, 2),
              Table::num(krw, 2), Table::num(opt > 0 ? krw / opt : 1.0, 3)});
  }

  t.print("load-model specialization (cs = 0)");
  return 0;
}

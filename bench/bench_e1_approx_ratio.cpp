// E1 — Theorem 7: the §2 algorithm is a constant-factor approximation on
// arbitrary networks. We measure KRW cost / exhaustive optimum (same
// nearest+MST update policy) over random instance families and read/write
// mixes. The paper proves a (large) constant; the table reports the observed
// distribution, which should sit far below it and stay flat across mixes.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "exact/brute_force.hpp"
#include "graph/generators.hpp"

using namespace krw;
using namespace krw::benchutil;

namespace {

Graph makeFamily(int family, std::size_t n, Rng& rng) {
  switch (family) {
    case 0: return makeGnp(n, 0.3, rng, CostRange{1, 8});
    case 1: return makeRandomGeometric(n, 0.45, rng, 10.0);
    default: return makeRandomTree(n, rng, CostRange{1, 8});
  }
}
const char* familyName(int family) {
  return family == 0 ? "gnp" : family == 1 ? "geometric" : "tree";
}

}  // namespace

int main() {
  header("E1", "Theorem 7 - constant approximation factor on arbitrary networks");
  const std::size_t n = 10;
  const int trials = 60;

  Table t({"family", "write-mix", "trials", "ratio-min", "ratio-mean", "ratio-p90",
           "ratio-max"});
  Rng master(12345);
  for (int family = 0; family < 3; ++family) {
    for (const double writeMix : {0.0, 0.2, 0.5, 0.9}) {
      std::vector<double> ratios;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng = master.split(family * 1000 + static_cast<int>(writeMix * 100) * 10 + trial);
        Graph g = makeFamily(family, n, rng);
        std::vector<Cost> storage(n);
        for (auto& c : storage) c = rng.uniformReal(0, 40);
        DataManagementInstance inst(std::move(g), std::move(storage));
        std::vector<Freq> reads(n, 0), writes(n, 0);
        for (NodeId v = 0; v < n; ++v) {
          if (rng.uniformReal() > 0.7) continue;
          const Freq volume = 1 + rng.uniformInt(5);
          for (Freq i = 0; i < volume; ++i)
            (rng.uniformReal() < writeMix ? writes : reads)[v] += 1;
        }
        inst.addObject(std::move(reads), std::move(writes));
        if (inst.object(0).totalRequests() == 0) continue;

        const RequestProfile prof(inst, 0);
        const CopySet copies = KrwApprox{}.placeObject(inst, 0, prof);
        const Cost algo = objectCost(inst, 0, copies).total();
        const Cost opt = exactObjectOptimum(inst, 0).cost;
        if (opt > 0) ratios.push_back(algo / opt);
      }
      const Stats s = summarize(ratios);
      t.addRow({familyName(family), Table::num(writeMix, 1),
                Table::num(static_cast<std::uint64_t>(s.count)), Table::num(s.min, 3),
                Table::num(s.mean, 3), Table::num(s.p90, 3), Table::num(s.max, 3)});
    }
  }
  t.print("KRW / OPT(restricted policy), n=10, 60 trials per cell");
  return 0;
}

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace krw::benchutil {

/// Wall-clock seconds of a callable.
template <typename F>
double timeSeconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Simple summary statistics for ratio distributions.
struct Stats {
  double min = 0, mean = 0, p90 = 0, max = 0;
  std::size_t count = 0;
};

inline Stats summarize(std::vector<double> xs) {
  Stats s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  s.p90 = xs[std::min(xs.size() - 1, static_cast<std::size_t>(0.9 * xs.size()))];
  return s;
}

inline void header(const char* id, const char* claim) {
  std::printf("\n############ %s ############\n# claim: %s\n", id, claim);
}

}  // namespace krw::benchutil

// E18 — certified approximation ratios at scale. Exhaustive optima stop at
// ~n = 12; the Jain–Vazirani dual lower bound (core/lower_bound) certifies
// KRW / LB >= KRW / OPT on instances two orders of magnitude larger. The
// bound ignores update cost, so the certificate loosens as the write share
// grows — the read-only column is the honest headline number.

#include <cmath>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "core/lower_bound.hpp"
#include "graph/generators.hpp"
#include "workload/workload.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E18", "certified ratio KRW/dual-lower-bound on large instances");

  Table t({"family", "n", "write-frac", "trials", "certified-ratio mean", "max"});
  Rng master(1818);

  struct Family {
    const char* name;
    int id;
  };
  for (const Family fam : {Family{"geometric", 0}, Family{"gnp", 1}, Family{"transit-stub", 2}}) {
    for (const std::size_t n : {100u, 250u}) {
      for (const double wf : {0.0, 0.1}) {
        std::vector<double> ratios;
        for (int trial = 0; trial < 6; ++trial) {
          Rng rng = master.split(fam.id * 10000 + n * 10 + static_cast<int>(wf * 10) + trial);
          Graph g;
          if (fam.id == 0)
            g = makeRandomGeometric(n, 1.8 / std::sqrt(static_cast<double>(n)), rng, 40.0);
          else if (fam.id == 1)
            g = makeGnp(n, 6.0 / static_cast<double>(n), rng, CostRange{1, 9});
          else
            g = makeTransitStub({4, 3, n / 16, 20, 5, 1, 0.3, 0.4}, rng);
          const std::size_t nn = g.numNodes();
          std::vector<Cost> storage(nn);
          for (auto& c : storage) c = rng.uniformReal(10, 80);
          DataManagementInstance inst(std::move(g), std::move(storage));
          DemandParams d;
          d.totalRequests = 5 * nn;
          d.writeFraction = wf;
          d.nodeSkew = 0.6;
          addSyntheticObject(inst, d, rng);

          const RequestProfile prof(inst, 0);
          const Cost algo =
              objectCost(inst, 0, KrwApprox{}.placeObject(inst, 0, prof)).total();
          const Cost lb = dmObjectLowerBound(inst, 0);
          if (lb > 0) ratios.push_back(algo / lb);
        }
        const Stats s = summarize(ratios);
        t.addRow({fam.name, Table::num(std::uint64_t{n}), Table::num(wf, 1),
                  Table::num(static_cast<std::uint64_t>(s.count)), Table::num(s.mean, 2),
                  Table::num(s.max, 2)});
      }
    }
  }
  t.print("upper bounds on the true ratio (LB ignores update cost)");
  return 0;
}

// E2 — Theorem 13: the tree algorithm computes *optimal* placements. We
// verify DP cost == exhaustive optimum across tree families (checked count =
// exact matches), and additionally report the approximation quality of the
// generic §2 algorithm when run on the same trees (it only guarantees a
// constant, the DP guarantees 1.0).

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "exact/brute_force.hpp"
#include "graph/generators.hpp"
#include "tree/tree_solver.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E2", "Theorem 13 - optimal placement on trees; KRW ratio vs tree OPT");
  const int trials = 40;

  Table t({"tree-family", "n", "dp==opt", "krw/opt-mean", "krw/opt-max"});
  Rng master(777);

  struct Family {
    const char* name;
    Graph (*make)(std::size_t, Rng&);
  };
  const Family families[] = {
      {"random", [](std::size_t n, Rng& rng) { return makeRandomTree(n, rng, CostRange{1, 7}); }},
      {"path", [](std::size_t n, Rng&) { return makePath(n, 2.0); }},
      {"star", [](std::size_t n, Rng&) { return makeStar(n, 3.0); }},
      {"caterpillar", [](std::size_t, Rng&) { return makeCaterpillar(4, 2); }},
      {"balanced", [](std::size_t n, Rng&) { return makeBalancedTree(n, 3, 2.0); }},
  };

  for (const Family& fam : families) {
    const std::size_t n = 12;
    int exactMatches = 0, total = 0;
    std::vector<double> krwRatios;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng = master.split(trial + 31 * (&fam - families));
      Graph g = fam.make(n, rng);
      const std::size_t nn = g.numNodes();
      std::vector<Cost> storage(nn);
      for (auto& c : storage) c = rng.uniformReal(0, 30);
      DataManagementInstance inst(std::move(g), std::move(storage));
      std::vector<Freq> reads(nn, 0), writes(nn, 0);
      for (NodeId v = 0; v < nn; ++v) {
        reads[v] = rng.uniformInt(5);
        writes[v] = rng.uniformInt(3);
      }
      inst.addObject(std::move(reads), std::move(writes));
      if (inst.object(0).totalRequests() == 0) continue;

      const Cost dp = treeOptimalObject(inst, 0).cost;
      const Cost opt = exactTreeObjectOptimum(inst, 0).cost;
      ++total;
      if (std::abs(dp - opt) <= 1e-7 * (1 + opt)) ++exactMatches;

      const RequestProfile prof(inst, 0);
      const CopySet krw = KrwApprox{}.placeObject(inst, 0, prof);
      // Price KRW under its own (restricted) policy against the true optimum.
      if (opt > 0) krwRatios.push_back(objectCost(inst, 0, krw).total() / opt);
    }
    const Stats s = summarize(krwRatios);
    t.addRow({fam.name, Table::num(std::uint64_t{12}),
              std::to_string(exactMatches) + "/" + std::to_string(total),
              Table::num(s.mean, 3), Table::num(s.max, 3)});
  }
  t.print("tree DP exactness + KRW-on-tree quality (40 trials per family)");
  return 0;
}

// E15 — design ablation: sensitivity to the phase-2 threshold (paper: 5·rs)
// and the phase-3 deletion radius (paper: 4·rw). The constants are chosen to
// make Lemma 8 compose, not tuned for average cost; the bench maps the cost
// surface so a practitioner can see how much slack the proof leaves.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "exact/brute_force.hpp"
#include "graph/generators.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E15", "sensitivity to the phase constants (5*rs, 4*rw)");

  Rng master(1515);
  const int trials = 40;
  const std::size_t n = 10;

  Table t({"phase2-factor", "phase3-factor", "mean-ratio", "max-ratio", "avg-copies"});
  for (const double p2 : {2.0, 3.0, 5.0, 8.0}) {
    for (const double p3 : {0.0, 2.0, 4.0, 6.0, 12.0}) {
      std::vector<double> ratios;
      double copies = 0;
      int count = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng = master.split(trial);  // same instances for every cell
        Graph g = makeGnp(n, 0.3, rng, CostRange{1, 8});
        std::vector<Cost> storage(n);
        for (auto& c : storage) c = rng.uniformReal(0, 30);
        DataManagementInstance inst(std::move(g), std::move(storage));
        std::vector<Freq> reads(n, 0), writes(n, 0);
        for (NodeId v = 0; v < n; ++v) {
          reads[v] = rng.uniformInt(5);
          writes[v] = rng.uniformInt(3);
        }
        inst.addObject(std::move(reads), std::move(writes));
        if (inst.object(0).totalRequests() == 0) continue;

        KrwConfig cfg;
        cfg.phase2Factor = p2;
        cfg.phase3Factor = p3;
        const RequestProfile prof(inst, 0);
        const CopySet cs = KrwApprox(cfg).placeObject(inst, 0, prof);
        const Cost algo = objectCost(inst, 0, cs).total();
        const Cost opt = exactObjectOptimum(inst, 0).cost;
        if (opt > 0) {
          ratios.push_back(algo / opt);
          copies += static_cast<double>(cs.size());
          ++count;
        }
      }
      const Stats s = summarize(ratios);
      t.addRow({Table::num(p2, 1), Table::num(p3, 1), Table::num(s.mean, 3),
                Table::num(s.max, 3), Table::num(copies / std::max(1, count), 2)});
    }
  }
  t.print("paper's cell is (5, 4); ratios vs exhaustive OPT, n=10 G(n,p)");
  return 0;
}

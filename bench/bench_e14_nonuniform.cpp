// E14 — §1.1 remark: "all our results hold also in a non-uniform model".
// Objects carry storage/transfer sizes; the solvers use the reduction to
// scaled storage costs. The bench verifies (a) the tree DP stays exact under
// sizes, (b) KRW's ratio band is unchanged, and (c) the economics: objects
// that are expensive to ship consolidate, objects expensive to store spread
// less than free-storage ones but follow read locality.

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/krw_approx.hpp"
#include "exact/brute_force.hpp"
#include "graph/generators.hpp"
#include "tree/tree_solver.hpp"

using namespace krw;
using namespace krw::benchutil;

int main() {
  header("E14", "non-uniform object sizes (paper section 1.1 remark)");

  // (a)+(b): exactness and ratio across random sized instances.
  {
    Rng master(1414);
    int dpExact = 0, dpTotal = 0;
    std::vector<double> krwRatios;
    for (int trial = 0; trial < 40; ++trial) {
      Rng rng = master.split(trial);
      const std::size_t n = 9;
      Graph g = makeRandomTree(n, rng, CostRange{1, 6});
      std::vector<Cost> storage(n);
      for (auto& c : storage) c = rng.uniformReal(0, 30);
      DataManagementInstance inst(std::move(g), std::move(storage));
      std::vector<Freq> reads(n, 0), writes(n, 0);
      for (NodeId v = 0; v < n; ++v) {
        reads[v] = rng.uniformInt(5);
        writes[v] = rng.uniformInt(3);
      }
      const Cost ss = 0.25 + rng.uniformReal() * 4;
      const Cost ts = 0.25 + rng.uniformReal() * 4;
      inst.addObject(std::move(reads), std::move(writes), ss, ts);
      if (inst.object(0).totalRequests() == 0) continue;

      const Cost dp = treeOptimalObject(inst, 0).cost;
      const Cost brute = exactTreeObjectOptimum(inst, 0).cost;
      ++dpTotal;
      if (std::abs(dp - brute) <= 1e-7 * (1 + brute)) ++dpExact;

      const RequestProfile prof(inst, 0);
      const Cost krw =
          objectCost(inst, 0, KrwApprox{}.placeObject(inst, 0, prof)).total();
      const Cost opt = exactObjectOptimum(inst, 0).cost;
      if (opt > 0) krwRatios.push_back(krw / opt);
    }
    const Stats s = summarize(krwRatios);
    Table t({"check", "result"});
    t.addRow({"tree DP exact under sizes", std::to_string(dpExact) + "/" +
                                               std::to_string(dpTotal)});
    t.addRow({"KRW/OPT mean", Table::num(s.mean, 3)});
    t.addRow({"KRW/OPT max", Table::num(s.max, 3)});
    t.print("(a)+(b) correctness under non-uniform sizes");
  }

  // (c): economics of the size ratio on a fixed demand pattern.
  {
    Table t({"storageSize", "transferSize", "krw-copies", "opt-copies", "opt-cost"});
    for (const auto& [ss, ts] : std::initializer_list<std::pair<Cost, Cost>>{
             {1, 1}, {8, 1}, {1, 8}, {8, 8}, {0.125, 1}, {1, 0.125}}) {
      Rng rng(2718);
      const std::size_t n = 30;
      Graph g = makeRandomTree(n, rng, CostRange{1, 5});
      DataManagementInstance inst(std::move(g), std::vector<Cost>(n, 10.0));
      std::vector<Freq> reads(n, 2), writes(n, 0);
      writes[0] = 4;
      inst.addObject(std::move(reads), std::move(writes), ss, ts);

      const RequestProfile prof(inst, 0);
      const CopySet krw = KrwApprox{}.placeObject(inst, 0, prof);
      const TreeObjectResult opt = treeOptimalObject(inst, 0);
      t.addRow({Table::num(ss, 3), Table::num(ts, 3),
                Table::num(std::uint64_t{krw.size()}),
                Table::num(std::uint64_t{opt.copies.size()}), Table::num(opt.cost, 0)});
    }
    t.print("(c) size ratio economics (read-mostly object): raising transferSize makes\n"
            "    reads pricey relative to storage -> MORE copies; raising storageSize\n"
            "    consolidates; scaling both together leaves the placement unchanged");
  }
  return 0;
}
